#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the tree's own
# translation units via a compile database.
#
# Two modes:
#   scripts/run_clang_tidy.sh              # changed files vs origin/main (local)
#   MODE=full scripts/run_clang_tidy.sh    # every TU (the CI clang-tidy job)
#
# Changed-files mode keeps the local loop fast: analysis costs seconds per TU,
# so a full-tree run is minutes even parallelized — CI pays that once per PR,
# developers only pay for what they touched. Exits 0 with a notice when
# clang-tidy is not installed (the dev container ships g++ only); CI installs
# it explicitly, so a skip there would fail the job's grep for the summary
# line instead of silently passing.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tidy}
MODE=${MODE:-changed}
BASE_REF=${BASE_REF:-origin/main}

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "run_clang_tidy.sh: clang-tidy not installed — skipping (CI runs it)" >&2
  exit 0
fi

# The compile database is the analysis input: clang-tidy replays each TU's
# exact compile command (include paths, -D defines, -std) from it. Configure
# a dedicated tree so the developer's incremental build dir keeps its cache.
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi
# The generated build-info header is a build-time byproduct; produce it so
# tools/*.cpp TUs resolve their include without a full build.
cmake --build "$BUILD_DIR" --target rumor_build_info > /dev/null

# Candidate TUs come from the compile database itself (only files CMake
# actually compiles), filtered to the repo's own sources — FetchContent
# dependencies under _deps/ are not ours to lint.
mapfile -t all_tus < <(python3 - "$BUILD_DIR/compile_commands.json" <<'EOF'
import json
import os
import sys

root = os.getcwd()
with open(sys.argv[1]) as f:
    for entry in json.load(f):
        path = os.path.realpath(os.path.join(entry["directory"], entry["file"]))
        rel = os.path.relpath(path, root)
        if rel.startswith(("src/", "tools/", "tests/", "bench/", "examples/")):
            print(rel)
EOF
)

if [ "$MODE" = full ]; then
  tus=("${all_tus[@]}")
else
  # Changed-files mode: intersect the database with the diff against the base
  # ref. Header edits are mapped to every TU (cheap approximation: headers
  # here are widely included and the fallback is just MODE=full).
  if ! git rev-parse --verify --quiet "$BASE_REF" > /dev/null; then
    echo "run_clang_tidy.sh: base ref '$BASE_REF' not found, using full mode" >&2
    tus=("${all_tus[@]}")
  else
    mapfile -t changed < <(git diff --name-only "$BASE_REF"...HEAD -- '*.cpp' '*.h')
    if [ "${#changed[@]}" -eq 0 ]; then
      echo "run_clang_tidy.sh: no C++ changes vs $BASE_REF — nothing to lint" >&2
      exit 0
    fi
    tus=()
    header_changed=0
    for f in "${changed[@]}"; do
      case "$f" in
        *.h) header_changed=1 ;;
        *)
          for tu in "${all_tus[@]}"; do
            [ "$tu" = "$f" ] && tus+=("$tu")
          done
          ;;
      esac
    done
    if [ "$header_changed" -eq 1 ]; then
      echo "run_clang_tidy.sh: header changed — analyzing all TUs" >&2
      tus=("${all_tus[@]}")
    fi
    if [ "${#tus[@]}" -eq 0 ]; then
      echo "run_clang_tidy.sh: changed files are not compiled TUs — nothing to lint" >&2
      exit 0
    fi
  fi
fi

echo "clang-tidy: analyzing ${#tus[@]} TU(s) with $(nproc) jobs" >&2

# Fan the TUs across cores; each clang-tidy invocation is single-threaded.
# --quiet suppresses the "N warnings generated" chatter from system headers;
# findings still print with file:line. xargs propagates any non-zero status.
printf '%s\n' "${tus[@]}" |
  xargs -P "$(nproc)" -n 4 clang-tidy -p "$BUILD_DIR" --quiet

echo "clang-tidy: clean (${#tus[@]} TUs)" >&2
