#!/usr/bin/env bash
# Fast sharded-backend smoke for ctest: on small cells, `rumor_cli --shards N`
# (coordinator + worker subprocesses, exec/sharded_backend.h) must emit
# byte-identical output to the in-process run — same per-trial records AND
# same summary aggregates, since the coordinator recomputes them from the
# merged stream in trial order — while the manifest must record the sharded
# execution topology. The full shard x thread identity matrix on mid-size
# cells lives in check_thread_identity.sh; this is the seconds-scale version
# run on every ctest invocation.
#
# Usage: scripts/check_shard_identity.sh path/to/rumor_cli
set -euo pipefail
cli=${1:?usage: check_shard_identity.sh path/to/rumor_cli}
if [ ! -x "$cli" ]; then
  echo "check_shard_identity.sh: rumor_cli not found or not executable at '$cli'" >&2
  echo "  build it first: cmake --build build --target rumor_cli" >&2
  exit 2
fi

ref=$(mktemp); out=$(mktemp); rec=$(mktemp)
trap 'rm -f "$ref" "$out" "$rec"' EXIT

run_cells() {  # $1 = shard count, $2 = output file
  # A dynamic and a static cell; elapsed_seconds and RSS telemetry are the
  # only legitimately varying fields, so strip them before comparing.
  {
    "$cli" run --scenario dynamic_star --n 64 --trials 7 --seed 3 \
      --shards "$1" --json
    "$cli" sweep --scenarios static_torus --engines async_jump,sync \
      --rows 12 --cols 12 --trials 4 --seed 5 --shards "$1" --json
  } | sed -E 's/"(elapsed_seconds|peak_rss_mb|worker_peak_rss_mb)":[^,}]*[,}]//g' \
    | sed -E 's/"(backend|shards|worker_cmd|threads)":("[^"]*"|[0-9]+),?//g' > "$2"
}

run_cells 1 "$ref"
for shards in 2 3; do
  run_cells "$shards" "$out"
  if ! diff -u "$ref" "$out"; then
    echo "output differs between --shards 1 and --shards $shards" >&2
    exit 1
  fi
done

# Same contract through the reproducibility harness: record the cells
# in-process, then replay the recording on the sharded backend. replay
# byte-diffs every record against the recording, so a single drifted field
# fails with the trial and field named.
{
  "$cli" run --scenario dynamic_star --n 64 --trials 7 --seed 3 --json
  "$cli" sweep --scenarios static_torus --engines async_jump,sync \
    --rows 12 --cols 12 --trials 4 --seed 5 --json
} > "$rec"
for shards in 2 3; do
  if ! "$cli" replay "$rec" --shards "$shards" > /dev/null; then
    echo "replay --shards $shards diverged from the in-process recording" >&2
    exit 1
  fi
done

# The manifest must admit what it ran: a sharded run records the backend,
# shard count, and the worker command line.
manifest=$("$cli" run --scenario dynamic_star --n 64 --trials 4 --seed 3 \
  --shards 2 --json | grep '"record":"summary"')
for field in '"backend":"sharded"' '"shards":2' '"worker_cmd":"' '"worker_peak_rss_mb":'; do
  if ! grep -qF "$field" <<<"$manifest"; then
    echo "sharded manifest is missing $field" >&2
    echo "$manifest" >&2
    exit 1
  fi
done

echo "sharded output byte-identical to in-process for shards={2,3}" \
     "(direct diff + replay harness), manifest records the sharded topology"
