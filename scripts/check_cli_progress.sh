#!/usr/bin/env bash
# CLI progress-contract smoke: without --progress a run is byte-silent on
# stderr (million-node sweeps log nothing unless asked), with --progress it
# emits per-chunk ETA lines on stderr only — stdout's trial records must be
# byte-identical either way.
#
# Usage: scripts/check_cli_progress.sh path/to/rumor_cli
set -euo pipefail
cli=${1:?usage: check_cli_progress.sh path/to/rumor_cli}
if [ ! -x "$cli" ]; then
  echo "check_cli_progress.sh: rumor_cli not found or not executable at '$cli'" >&2
  echo "  build it first: cmake --build build --target rumor_cli" >&2
  exit 2
fi

run_args=(run --scenario static_clique --n 32 --trials 6 --seed 3 --chunk 2 --json)

quiet_err=$("${cli}" "${run_args[@]}" 2>&1 >/dev/null)
if [ -n "$quiet_err" ]; then
  echo "expected silent stderr without --progress, got:" >&2
  echo "$quiet_err" >&2
  exit 1
fi

tmp_err=$(mktemp)
trap 'rm -f "$tmp_err"' EXIT
plain=$("${cli}" "${run_args[@]}" 2>/dev/null | grep '"record":"trial"')
with=$("${cli}" "${run_args[@]}" --progress 2>"$tmp_err" | grep '"record":"trial"')

if ! grep -q '^progress \[static_clique\] .*trials.*eta' "$tmp_err"; then
  echo "expected progress ETA lines on stderr with --progress, got:" >&2
  cat "$tmp_err" >&2
  exit 1
fi
# Format contract: done/total, elapsed, cumulative throughput, clamped ETA.
# Before the first trial lands (or the clock advances) rate and ETA print as
# "--"; they must never print a fabricated "eta 0.0s".
fmt='^progress \[[^]]*\] [0-9]+/[0-9]+ trials  [0-9.]+s elapsed  ([0-9.]+ trials/s  eta [0-9.]+s|-- trials/s  eta --)$'
if grep -vE "$fmt" "$tmp_err" | grep -q .; then
  echo "progress line format drifted from the contract:" >&2
  grep -vE "$fmt" "$tmp_err" >&2
  exit 1
fi
if ! grep -qE '[0-9.]+ trials/s' "$tmp_err"; then
  echo "expected at least one numeric cumulative trials/s rate, got:" >&2
  cat "$tmp_err" >&2
  exit 1
fi
if [ "$plain" != "$with" ]; then
  echo "--progress changed stdout trial records" >&2
  diff <(echo "$plain") <(echo "$with") >&2 || true
  exit 1
fi

# Sweep: progress lines carry the cell label and count.
"${cli}" sweep --scenarios static_clique,dynamic_star --engines async_jump \
  --sweep n=16,32 --trials 4 --seed 1 --progress --json >/dev/null 2>"$tmp_err"
if ! grep -q 'cell 4/4' "$tmp_err"; then
  echo "expected sweep progress to label cells, got:" >&2
  cat "$tmp_err" >&2
  exit 1
fi

echo "progress contract holds: quiet by default, labelled ETA lines opt-in"
