#!/usr/bin/env python3
"""Determinism linter: the repo's written determinism contracts, enforced
mechanically.

The reproducibility harness (docs/ARCHITECTURE.md) promises byte-identical
records for any thread/shard/ISA count. Most of that contract is enforced by
tests diffing record streams, but several bug classes slip past end-to-end
diffs until CI runs on hardware (or a standard library) that happens to
diverge. Each rule here pins one such class at the source level:

  unordered-iteration  Iterating a std::unordered_{set,map} makes record
                       content depend on hash-table iteration order, which is
                       implementation-defined — the PR 5 libstdc++/libc++
                       edge-Markovian divergence was exactly this. In
                       record-producing layers (src/core, src/dynamic,
                       src/graph, src/stats, src/scenarios, src/bounds,
                       src/exec, src/repro) the containers are banned
                       outright; elsewhere in src/ and tools/ keyed lookup is
                       fine but iterating one is flagged.
  banned-randomness    rand()/srand(), std::random_device, time()/clock(),
                       and system_clock are non-reproducible entropy or wall
                       clock. All randomness must come from the seeded
                       counter-based Rng (stats/rng.h); all timing from
                       support/timer.h. Only src/support/ may touch the
                       underlying primitives.
  raw-thread           Threads may only be created at the two audited seams —
                       core/trial_pool and serve/server. A raw std::thread
                       (or std::async/pthread_create) anywhere else is
                       unpooled concurrency the TSan CI leg and the
                       determinism arguments don't cover.
  fp-reassociation     Pragmas or flags that let the compiler reassociate or
                       contract floating-point expressions (-ffast-math,
                       -ffp-contract=fast, #pragma float_control, ...) change
                       summation bits between builds. The build sets
                       -ffp-contract=off globally; nothing may override it.
  header-doc           Every public header (src/, bench/common) and every
                       tools/ entry point opens with a documentation comment.
                       (Absorbed from the old audit_headers.sh check; the
                       compile-probe checks remain in that script.)

Escape hatch: a finding whose line (or the line directly above it) carries
`lint:allow(<rule>) <justification>` is suppressed. The justification text is
mandatory — a bare allow marker is itself a finding.

Usage:
  scripts/lint_determinism.py              # lint the repository tree
  scripts/lint_determinism.py --self-test  # prove every rule fires on the
                                           # seeded violations committed under
                                           # scripts/lint_fixtures/
Exit codes: 0 clean, 1 findings, 2 internal/usage error.
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# Rule scopes, expressed as repo-relative path prefixes.
# --------------------------------------------------------------------------

# Layers whose output feeds the canonical record stream: anything
# iteration-order-dependent here can change record bytes.
RECORD_PRODUCING = (
    "src/core/", "src/dynamic/", "src/graph/", "src/stats/",
    "src/scenarios/", "src/bounds/", "src/exec/", "src/repro/",
)

# The two audited thread-creation seams (docs/ARCHITECTURE.md):
# the trial worker pool and the thread-per-connection serve daemon.
THREAD_SEAMS = (
    "src/core/trial_pool.h", "src/core/trial_pool.cpp",
    "src/serve/server.h", "src/serve/server.cpp",
)

CPP_EXTENSIONS = (".h", ".cpp", ".cc", ".hpp")
CMAKE_NAMES = ("CMakeLists.txt",)
CMAKE_EXTENSIONS = (".cmake",)

ALLOW_RE = re.compile(r"lint:allow\((?P<rule>[a-z-]+)\)(?P<why>.*)")

UNORDERED_TYPE_RE = re.compile(r"std\s*::\s*unordered_(?:map|set)\b")
UNORDERED_DECL_RE = re.compile(
    r"std\s*::\s*unordered_(?:map|set)\s*<[^;{]*>\s+(\w+)\s*[;{=(]")

BANNED_RANDOMNESS = [
    (re.compile(r"(?<![\w:])rand\s*\("), "rand()"),
    (re.compile(r"(?<![\w:])srand\s*\("), "srand()"),
    (re.compile(r"std\s*::\s*random_device"), "std::random_device"),
    (re.compile(r"(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"), "time()"),
    (re.compile(r"(?<![\w:.>])clock\s*\(\s*\)"), "clock()"),
    (re.compile(r"system_clock"), "system_clock"),
]

RAW_THREAD = [
    # std::thread except the std::thread::hardware_concurrency query.
    (re.compile(r"std\s*::\s*j?thread\b(?!\s*::)"), "std::thread"),
    (re.compile(r"std\s*::\s*async\s*\("), "std::async"),
    (re.compile(r"\bpthread_create\b"), "pthread_create"),
]

FP_REASSOCIATION = [
    (re.compile(r"-ffast-math"), "-ffast-math"),
    (re.compile(r"-funsafe-math-optimizations"), "-funsafe-math-optimizations"),
    (re.compile(r"-fassociative-math"), "-fassociative-math"),
    (re.compile(r"-ffp-contract\s*=\s*(?:fast|on)"), "-ffp-contract=fast/on"),
    (re.compile(r"#\s*pragma\s+STDC\s+FP_CONTRACT\s+ON"), "#pragma STDC FP_CONTRACT ON"),
    (re.compile(r"#\s*pragma\s+float_control"), "#pragma float_control"),
    (re.compile(r"#\s*pragma\s+clang\s+fp\b"), "#pragma clang fp"),
    (re.compile(r"#\s*pragma\s+GCC\s+optimize"), "#pragma GCC optimize"),
    (re.compile(r"__attribute__\s*\(\s*\(\s*optimize"), "__attribute__((optimize))"),
]


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule, self.message)


def is_comment_or_include(line):
    stripped = line.lstrip()
    return stripped.startswith("//") or stripped.startswith("#include")


def allow_marker(lines, index):
    """The allow marker governing lines[index], if any: same line or the one
    directly above. Returns (rule, justification) or None."""
    for candidate in (lines[index], lines[index - 1] if index > 0 else ""):
        m = ALLOW_RE.search(candidate)
        if m:
            return m.group("rule"), m.group("why").strip()
    return None


def check_lines(rel, lines, patterns, rule, findings, comment_prefix="//"):
    """Flag every (pattern, label) match outside comments, honouring
    lint:allow markers."""
    for i, line in enumerate(lines):
        if line.lstrip().startswith(comment_prefix):
            continue
        for pattern, label in patterns:
            if not pattern.search(line):
                continue
            allow = allow_marker(lines, i)
            if allow is not None and allow[0] == rule:
                if not allow[1]:
                    findings.append(Finding(
                        rel, i + 1, rule,
                        "lint:allow(%s) needs a justification after the marker" % rule))
                break
            findings.append(Finding(
                rel, i + 1, rule, "%s is banned here (determinism contract)" % label))
            break


def lint_unordered(rel, lines, findings):
    strict = rel.startswith(RECORD_PRODUCING)
    if strict:
        for i, line in enumerate(lines):
            if is_comment_or_include(line.rstrip()) or not UNORDERED_TYPE_RE.search(line):
                continue
            allow = allow_marker(lines, i)
            if allow is not None and allow[0] == "unordered-iteration":
                if not allow[1]:
                    findings.append(Finding(
                        rel, i + 1, "unordered-iteration",
                        "lint:allow needs a justification after the marker"))
                continue
            findings.append(Finding(
                rel, i + 1, "unordered-iteration",
                "std::unordered_{set,map} in a record-producing layer "
                "(hash iteration order is implementation-defined; "
                "use a sorted container or an index)"))
        return
    # Outside the strict layers: keyed lookup is fine, iteration is not.
    names = set()
    for line in lines:
        if is_comment_or_include(line):
            continue
        for m in UNORDERED_DECL_RE.finditer(line):
            names.add(m.group(1))
    if not names:
        return
    ident = "|".join(re.escape(n) for n in sorted(names))
    iter_res = [
        (re.compile(r"for\s*\([^;)]*:\s*(?:this\s*->\s*)?(?:%s)\s*\)" % ident),
         "range-for over an unordered container"),
        (re.compile(r"\b(?:%s)\s*\.\s*(?:begin|end|cbegin|cend)\s*\(" % ident),
         "iterator walk over an unordered container"),
    ]
    check_lines(rel, lines, iter_res, "unordered-iteration", findings)


def lint_header_doc(rel, lines, findings):
    first = lines[0].lstrip() if lines else ""
    if not (first.startswith("//") or first.startswith("/*")):
        findings.append(Finding(
            rel, 1, "header-doc",
            "file must open with a documentation comment describing the module"))


def lint_file(root, rel, findings):
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        raise RuntimeError("cannot read %s: %s" % (rel, e))

    is_cmake = rel.endswith(CMAKE_EXTENSIONS) or os.path.basename(rel) in CMAKE_NAMES
    if is_cmake:
        # Only the flag spellings can appear in CMake; '#' comments are prose.
        check_lines(rel, lines, FP_REASSOCIATION[:4], "fp-reassociation", findings,
                    comment_prefix="#")
        return

    in_src_or_tools = rel.startswith(("src/", "tools/"))
    if in_src_or_tools:
        lint_unordered(rel, lines, findings)
        if not rel.startswith("src/support/"):
            check_lines(rel, lines, BANNED_RANDOMNESS, "banned-randomness", findings)
        if rel not in THREAD_SEAMS:
            check_lines(rel, lines, RAW_THREAD, "raw-thread", findings)
    check_lines(rel, lines, FP_REASSOCIATION, "fp-reassociation", findings)

    if (rel.startswith(("src/", "bench/common/")) and rel.endswith(".h")) or (
            rel.startswith("tools/") and rel.endswith(".cpp")):
        lint_header_doc(rel, lines, findings)


def walk_tree(root):
    """Repo-relative lintable files under the scanned top-level entries."""
    skip_dirs = {".git", "build", "lint_fixtures", "_deps", "golden", "__pycache__"}
    tops = ("src", "tools", "tests", "bench", "examples", "cmake", "scripts")
    out = []
    for top in tops:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in skip_dirs and not d.startswith("build"))
            for name in sorted(filenames):
                if name.endswith(CPP_EXTENSIONS) or name.endswith(CMAKE_EXTENSIONS) \
                        or name in CMAKE_NAMES:
                    out.append(os.path.relpath(os.path.join(dirpath, name), root))
    for name in CMAKE_NAMES:
        if os.path.isfile(os.path.join(root, name)):
            out.append(name)
    return out


def lint_tree(root, files=None):
    findings = []
    for rel in (files if files is not None else walk_tree(root)):
        lint_file(root, rel, findings)
    return findings


# --------------------------------------------------------------------------
# Self-test: the committed fixtures under scripts/lint_fixtures/ seed exactly
# one violation class per file; the linter must report each of them (and
# nothing else) when rooted at the fixture tree.
# --------------------------------------------------------------------------

EXPECTED_FIXTURE_FINDINGS = {
    ("src/core/seeded_unordered.cpp", "unordered-iteration"),
    ("src/serve/seeded_unordered_walk.cpp", "unordered-iteration"),
    ("src/graph/seeded_wall_clock.cpp", "banned-randomness"),
    ("src/stats/seeded_raw_thread.cpp", "raw-thread"),
    ("src/dynamic/seeded_fast_math.h", "fp-reassociation"),
    ("src/bounds/seeded_undocumented.h", "header-doc"),
    ("cmake/SeededFlags.cmake", "fp-reassociation"),
    ("src/exec/seeded_bare_allow.cpp", "banned-randomness"),
}


def self_test(script_dir):
    fixtures = os.path.join(script_dir, "lint_fixtures")
    if not os.path.isdir(fixtures):
        print("lint_determinism: fixtures missing at %s" % fixtures, file=sys.stderr)
        return 2
    findings = lint_tree(fixtures)
    got = {(f.path, f.rule) for f in findings}
    ok = True
    for expected in sorted(EXPECTED_FIXTURE_FINDINGS):
        if expected not in got:
            print("SELF-TEST FAIL: seeded violation not caught: %s [%s]" % expected)
            ok = False
    for extra in sorted(got - EXPECTED_FIXTURE_FINDINGS):
        print("SELF-TEST FAIL: unexpected finding: %s [%s]" % extra)
        ok = False
    # The justified-allow fixture must be clean: the marker suppresses it.
    allowed = [f for f in findings if f.path == "src/repro/seeded_allowed.cpp"]
    if allowed:
        print("SELF-TEST FAIL: lint:allow with justification did not suppress")
        ok = False
    if ok:
        print("lint_determinism --self-test: OK "
              "(%d seeded violations caught, justified allow suppressed)"
              % len(EXPECTED_FIXTURE_FINDINGS))
        return 0
    return 1


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*",
                        help="repo-relative files to lint (default: whole tree)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: the script's parent)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on scripts/lint_fixtures/")
    args = parser.parse_args(argv)

    script_dir = os.path.dirname(os.path.abspath(__file__))
    if args.self_test:
        return self_test(script_dir)

    root = args.root or os.path.dirname(script_dir)
    findings = lint_tree(root, args.files or None)
    for f in findings:
        print(f)
    if findings:
        print("lint_determinism: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    print("lint_determinism: OK (tree clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
