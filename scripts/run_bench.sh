#!/usr/bin/env bash
# Records a perf snapshot of the standard scenario x engine grid as JSON
# lines via `rumor_cli sweep --json` (per-trial records + one summary record
# per grid cell, each summary carrying the full reproducibility manifest and
# wall-clock elapsed_seconds).
#
# Usage: scripts/run_bench.sh [OUTPUT.json]   (default BENCH_2.json)
#   BUILD_DIR=build-release scripts/run_bench.sh   # alternate build tree
#
# Successive snapshots (BENCH_2.json, BENCH_3.json, ...) are how scale/speed
# PRs demonstrate their wins: diff the elapsed_seconds of matching manifests.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_2.json}

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" --target rumor_cli -j"$(nproc)"

"$BUILD_DIR/tools/rumor_cli" sweep \
  --scenarios static_clique,static_expander,dynamic_star,clique_bridge,edge_markovian,mobile_geometric \
  --engines async_jump,async_tick,sync \
  --sweep n=128,256 \
  --trials 10 --seed 1 --threads 1 \
  --json > "$OUT"

echo "wrote $OUT ($(grep -c '"record":"summary"' "$OUT") summary records)" >&2
