#!/usr/bin/env bash
# Records a perf snapshot of the scenario x engine grid as JSON lines.
#
# Sections of a snapshot (all JSON-lines, distinguished by "record"):
#   * "trial" / "summary"  — `rumor_cli sweep --json` per-trial records plus
#     one summary per grid cell, each summary carrying the reproducibility
#     manifest (build id included) and wall-clock elapsed_seconds;
#   * "scenario_matrix"    — bench_scenario_matrix --json: registry-wide
#     jump-engine throughput, one row per catalog scenario;
#   * "hw_info"            — `rumor_cli hwinfo`: the compiled SIMD tier and
#     lane width plus the host's hardware thread count, so every snapshot
#     names the machine class that produced it (a flat thread curve on a
#     1-vCPU container reads as exactly that, not as a scaling bug);
#   * "microbench"         — bench_engine_throughput and bench_simd_kernels
#     (google-benchmark) converted to one record per benchmark, when the
#     binaries exist.
#
# Usage: scripts/run_bench.sh [OUTPUT.json]     (default BENCH_3.json)
#   BUILD_DIR=build-release scripts/run_bench.sh    # alternate build tree
#   MATRIX=ci scripts/run_bench.sh bench_ci.json    # pinned small CI matrix
#   MATRIX=scale scripts/run_bench.sh bench_scale.json       # n=10^5 CI smoke
#   MATRIX=scale-full scripts/run_bench.sh BENCH_4.json      # n=10^6 + curve
#   MATRIX=shard scripts/run_bench.sh bench_shard.json       # scale @ --shards 2
#
# Successive snapshots (BENCH_2.json, BENCH_3.json, ...) are how scale/speed
# PRs demonstrate their wins: scripts/compare_bench.py diffs the throughput of
# matching summary manifests, and the CI perf job gates on it.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_3.json}
MATRIX=${MATRIX:-full}

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" --target rumor_cli -j"$(nproc)"
# Only the full matrix runs the registry-wide bench binary; the CI/scale
# matrices must work in a tools-only build tree (RUMOR_BUILD_BENCHES=OFF).
if [ "$MATRIX" = full ]; then
  cmake --build "$BUILD_DIR" --target bench_scenario_matrix -j"$(nproc)"
fi
# Optional target: only generated when google-benchmark is installed, and
# only worth building for the matrices that run it (the scale matrices skip
# microbenches entirely).
if [[ "$MATRIX" != scale* && "$MATRIX" != shard ]] &&
   cmake --build "$BUILD_DIR" --target help 2>/dev/null | grep -q bench_engine_throughput; then
  cmake --build "$BUILD_DIR" --target bench_engine_throughput bench_simd_kernels -j"$(nproc)"
fi

cli="$BUILD_DIR/tools/rumor_cli"
: > "$OUT"

# Lead every snapshot with the hw_info record (SIMD tier, lane width, thread
# budget) so the summary/perf_counters lines below it can be interpreted
# against the machine class — the companion of the perf_counters record.
"$cli" hwinfo >> "$OUT"

# Refuse sanitized builds: sanitizer runtimes distort wall clock by 5-20x, so
# a TSan/ASan-built rumor_cli would poison every downstream trend comparison
# (compare_bench.py has no way to tell a regression from an instrumented
# binary). The hw_info record just written carries the build's sanitizer
# stamp; anything but "none" aborts before a single cell runs. Override with
# ALLOW_SANITIZER=1 only for debugging the harness itself.
sanitizer=$(grep -o '"sanitizer":"[^"]*"' "$OUT" | head -n1 | cut -d'"' -f4)
if [ "${sanitizer:-none}" != none ] && [ "${ALLOW_SANITIZER:-0}" != 1 ]; then
  echo "run_bench.sh: refusing to record a snapshot from a sanitized build" >&2
  echo "  (hw_info reports sanitizer=\"$sanitizer\"; rebuild without SANITIZE," >&2
  echo "   or set ALLOW_SANITIZER=1 to override for harness debugging)" >&2
  rm -f "$OUT"
  exit 3
fi

case "$MATRIX" in
  full)
    # 1. The BENCH_2-compatible scenario x engine grid.
    "$cli" sweep \
      --scenarios static_clique,static_expander,dynamic_star,clique_bridge,edge_markovian,mobile_geometric \
      --engines async_jump,async_tick,sync \
      --sweep n=128,256 \
      --trials 10 --seed 1 --threads 1 \
      --json >> "$OUT"
    # 2. Hot-path cells: large static graphs under the jump engine (the
    #    headline ≥2x acceptance cell is static_clique n=4096 async_jump).
    "$cli" sweep --scenarios static_clique --engines async_jump \
      --sweep n=1024,4096 --trials 10 --seed 1 --threads 1 --json >> "$OUT"
    "$cli" sweep --scenarios static_expander --engines async_jump \
      --sweep n=16384 --trials 10 --seed 1 --threads 1 --json >> "$OUT"
    # 3. Registry-wide jump-engine throughput rows.
    "$BUILD_DIR/bench/bench_scenario_matrix" --n 256 --trials 10 --seed 1 --json >> "$OUT"
    ;;
  ci)
    # Pinned small matrix for the CI perf gate: few cells, each big enough
    # for the wall clock to be meaningful on a shared runner.
    "$cli" sweep \
      --scenarios static_clique,dynamic_star,edge_markovian \
      --engines async_jump,sync \
      --sweep n=512 \
      --trials 30 --seed 1 --threads 1 --json >> "$OUT"
    "$cli" sweep --scenarios static_clique --engines async_jump,async_tick \
      --sweep n=2048 --trials 15 --seed 1 --threads 1 --json >> "$OUT"
    # The hardware-tier acceptance cell: the edge-Markovian n=10^6 hot path
    # at one thread — the single cell the SIMD kernels, bulk RNG tier, and
    # the serial-straggler work (tiled evolution boundary sweep, streaming
    # CSR fill) are gated on. Minutes-scale on purpose: wall clock at this
    # size is dominated by the kernels, not driver noise.
    "$cli" sweep --scenarios edge_markovian --engines async_jump \
      --sweep n=1000000 --p 1.6e-06 --q 0.2 \
      --trials 3 --seed 11 --threads 1 --json >> "$OUT"
    ;;
  scale)
    # Scale-tier CI smoke (the scale-smoke job): one 10^5-node static family
    # and one 10^5-node dynamic family under the jump engine at threads=4.
    # A dense graph is physically impossible at this scale (a 10^5-clique's
    # CSR alone is ~40 GB), so the static cell is the 320x320 torus — shared
    # immutable snapshot across trials — and the dynamic cell is
    # edge-Markovian pinned at mean degree 8 (p/(p+q)·n ≈ 8).
    "$cli" sweep --scenarios static_torus --engines async_jump \
      --rows 320 --cols 320 \
      --trials 8 --seed 1 --threads 4 --json >> "$OUT"
    "$cli" sweep --scenarios edge_markovian --engines async_jump \
      --sweep n=100000 --p 1.6e-05 --q 0.2 \
      --trials 8 --seed 1 --threads 4 --json >> "$OUT"
    ;;
  shard)
    # Sharded-backend perf smoke (the shard-smoke job): the exact scale cells
    # rerun through `--shards 2` — a coordinator merging two worker
    # subprocesses (exec/sharded_backend.h) with the thread budget split
    # between them. The manifests carry the same (scenario, params, engine,
    # protocol, trials, seed, threads) key, so compare_bench.py matches them
    # against scripts/scale_baseline.json cell-for-cell (matching ignores the
    # backend/shards columns) and the gate bounds the sharding overhead
    # against the in-process baseline.
    "$cli" sweep --scenarios static_torus --engines async_jump \
      --rows 320 --cols 320 \
      --trials 8 --seed 1 --shards 2 --threads 4 --json >> "$OUT"
    "$cli" sweep --scenarios edge_markovian --engines async_jump \
      --sweep n=100000 --p 1.6e-05 --q 0.2 \
      --trials 8 --seed 1 --shards 2 --threads 4 --json >> "$OUT"
    ;;
  scale-full)
    # The BENCH_4 scale tier: a completed n=10^6 sweep for a static and a
    # dynamic family, each recorded at threads 1, 2, 4, 8 with identical
    # seeds — the thread axis is the scaling curve, and because per-trial
    # streams are counter-based the trial records must be bit-identical
    # across the four runs of a cell (README "Scaling").
    for threads in 1 2 4 8; do
      "$cli" sweep --scenarios static_torus --engines async_jump \
        --rows 1000 --cols 1000 \
        --trials 4 --seed 1 --threads "$threads" --json >> "$OUT"
      "$cli" sweep --scenarios edge_markovian --engines async_jump \
        --sweep n=1000000 --p 1.6e-06 --q 0.2 \
        --trials 3 --seed 1 --threads "$threads" --json >> "$OUT"
      # The PR 5 acceptance cell: mean degree 8 held at q=0.5 — maximum
      # churn for the tiled evolution (≈4M births+deaths per step).
      "$cli" sweep --scenarios edge_markovian --engines async_jump \
        --sweep n=1000000 --p 4e-06 --q 0.5 \
        --trials 3 --seed 1 --threads "$threads" --json >> "$OUT"
    done
    ;;
  *)
    echo "unknown MATRIX '$MATRIX' (known: full, ci, scale, scale-full, shard)" >&2
    exit 2
    ;;
esac

# Hardware counters on one pinned hot-path cell (the headline static_clique
# jump-engine cell), recorded as a {"record":"perf_counters",...} line:
# raw counts plus derived IPC and cache-miss rate — the two metrics the
# tiled/arena work optimizes for. Gracefully skipped when `perf` is absent
# or the kernel forbids counters (containers, locked-down CI runners); the
# snapshot is complete without it.
if [[ "$MATRIX" != scale* && "$MATRIX" != shard ]]; then
  perf_tmp=$(mktemp)
  if perf stat -x, -e cycles,instructions,cache-references,cache-misses \
       -o "$perf_tmp" -- "$cli" run --scenario static_clique --n 1024 \
       --engine async_jump --trials 5 --seed 1 --json > /dev/null 2>/dev/null; then
    python3 - "$perf_tmp" >> "$OUT" <<'EOF'
import json
import sys

counts = {}
with open(sys.argv[1]) as f:
    for line in f:
        parts = line.strip().split(",")
        if len(parts) < 3:
            continue
        try:
            value = float(parts[0])
        except ValueError:
            continue  # <not supported> / <not counted> / header text
        counts[parts[2].split(":")[0].replace("-", "_")] = value
record = {"record": "perf_counters",
          "cell": "static_clique n=1024 async-jump push-pull trials=5 seed=1"}
record.update({k: counts[k] for k in sorted(counts)})
if counts.get("cycles"):
    record["ipc"] = counts.get("instructions", 0.0) / counts["cycles"]
if counts.get("cache_references"):
    record["cache_miss_rate"] = counts.get("cache_misses", 0.0) / counts["cache_references"]
print(json.dumps(record, separators=(",", ":")))
EOF
    echo "captured hardware counters for the pinned cell" >&2
  else
    echo "perf stat unavailable — skipping hardware counter capture" >&2
  fi
  rm -f "$perf_tmp"
fi

# google-benchmark microbenches, one JSON-lines record per benchmark. The
# scale and shard matrices skip them: their cells are macro-scale by
# construction and the smoke jobs should spend their minutes on the
# 10^5-node sweeps.
if [[ "$MATRIX" != scale* && "$MATRIX" != shard ]]; then
  tmp=$(mktemp)
  trap 'rm -f "$tmp"' EXIT
  for bench in bench_engine_throughput bench_simd_kernels; do
    [ -x "$BUILD_DIR/bench/$bench" ] || continue
    case "$bench" in
      bench_engine_throughput)
        filter='JumpEngine|TickEngine|SyncEngine|BlockRates|Fenwick|Topology|EdgeMarkovianStep' ;;
      # Every hardware-tier kernel, simd and ref legs both, so the trend
      # table tracks the speedup pair per cell (scripts/bench_trend.py).
      bench_simd_kernels)
        filter='SimdKernel' ;;
    esac
    "$BUILD_DIR/bench/$bench" \
      --benchmark_filter="$filter" \
      --benchmark_format=json > "$tmp" 2>/dev/null
    python3 - "$tmp" >> "$OUT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    data = json.load(f)
for b in data.get("benchmarks", []):
    print(json.dumps({
        "record": "microbench",
        "name": b["name"],
        "real_time_ns": b.get("real_time"),
        "items_per_second": b.get("items_per_second"),
    }, separators=(",", ":")))
EOF
  done
fi

echo "wrote $OUT ($(grep -c '"record":"summary"' "$OUT") summary records," \
     "$(grep -c '"record":"microbench"' "$OUT" || true) microbench records)" >&2
