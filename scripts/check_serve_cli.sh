#!/usr/bin/env bash
# rumor_serve surface smoke: help text, argument validation, and the client's
# exit-code contract against a live daemon — served requests exit 0, bad
# requests exit 3 with a named serve_error record (and run no simulation),
# stats/shutdown verbs work, and the daemon exits 0 after a clean shutdown.
# The heavier concurrent-load and cache-identity checks live in serve_load.sh.
#
# Usage: scripts/check_serve_cli.sh path/to/rumor_serve
set -euo pipefail
serve=${1:?usage: check_serve_cli.sh path/to/rumor_serve}
if [ ! -x "$serve" ]; then
  echo "check_serve_cli.sh: rumor_serve not found or not executable at '$serve'" >&2
  echo "  build it first: cmake --build build --target rumor_serve" >&2
  exit 2
fi

fail() { echo "check_serve_cli.sh: $*" >&2; exit 1; }

# --- offline surface: help and argument validation --------------------------
"$serve" --help | grep -q 'usage: rumor_serve' || fail "--help lacks usage text"
"$serve" help >/dev/null || fail "help subcommand should exit 0"

"$serve" 2>/dev/null && fail "no subcommand should exit non-zero" || [ $? -eq 2 ] \
  || fail "no subcommand should exit 2"
"$serve" dance 2>/dev/null && fail "unknown subcommand should exit non-zero" \
  || [ $? -eq 2 ] || fail "unknown subcommand should exit 2"
"$serve" serve 2>/dev/null && fail "serve without --socket should exit non-zero" \
  || [ $? -eq 2 ] || fail "serve without --socket should exit 2"
"$serve" client 2>/dev/null </dev/null \
  && fail "client without --socket should exit non-zero" \
  || [ $? -eq 2 ] || fail "client without --socket should exit 2"
"$serve" client --socket /tmp/rumor_absent_$$.sock '{"cmd":"stats"}' 2>/dev/null \
  && fail "client with no daemon should exit non-zero" \
  || [ $? -eq 2 ] || fail "client with no daemon should exit 2"

# --- online surface: exit codes against a live daemon -----------------------
sock="/tmp/rumor_smoke_$$.sock"
log=$(mktemp)
"$serve" serve --socket "$sock" 2>"$log" &
daemon=$!
cleanup() {
  kill "$daemon" 2>/dev/null || true
  wait "$daemon" 2>/dev/null || true
  rm -f "$sock" "$log"
}
trap cleanup EXIT
for _ in $(seq 50); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ] || { cat "$log" >&2; fail "daemon did not bind $sock"; }

out=$("$serve" client --socket "$sock" \
  '{"id":"ok","cmd":"run","scenario":"dynamic_star","n":16,"trials":2}') \
  || fail "served request should exit 0"
grep -q '"record":"serve_done"' <<<"$out" || fail "served request lacks serve_done"

# Bad requests: exit 3, a named serve_error, and nothing simulated.
for bad in \
  '{"id":"b1","cmd":"dance"}' \
  '{"id":"b2","cmd":"run"}' \
  '{"id":"b3","cmd":"run","scenario":"no_such_scenario"}' \
  '{"id":"b4","cmd":"run","scenario":"dynamic_star","threads":4}' \
  'not json at all'; do
  rc=0
  out=$("$serve" client --socket "$sock" "$bad") || rc=$?
  [ "$rc" -eq 3 ] || fail "bad request should exit 3 (got $rc): $bad"
  grep -q '"record":"serve_error"' <<<"$out" || fail "no serve_error for: $bad"
done
out=$("$serve" client --socket "$sock" \
  '{"id":"b4","cmd":"run","scenario":"dynamic_star","threads":4}') || true
grep -q "server's concern" <<<"$out" \
  || fail "topology rejection should name the policy"

stats=$("$serve" client --socket "$sock" '{"id":"s","cmd":"stats"}') \
  || fail "stats should exit 0"
grep -q '"cache_misses":1' <<<"$stats" \
  || fail "expected exactly one simulated cell, got: $stats"

"$serve" client --socket "$sock" '{"id":"x","cmd":"shutdown"}' >/dev/null \
  || fail "shutdown request should exit 0"
wait "$daemon" || fail "daemon should exit 0 after a requested shutdown"
grep -q 'shut down cleanly' "$log" || { cat "$log" >&2; fail "no clean-shutdown log"; }
[ -S "$sock" ] && fail "daemon left its socket file behind"
trap - EXIT
rm -f "$log"

echo "rumor_serve surface contract holds: usage/exit codes, named serve_error" \
     "records, topology rejection, clean shutdown"
