#!/usr/bin/env bash
# Header audit: every header under src/ (and bench/common) must compile
# standalone, every src/*.cpp must have a matching .h next to it
# (engine/test-only entry points excepted by listing them here), and every
# public header plus every tools/ entry point must open with a documentation
# comment block.
#
# Usage: scripts/audit_headers.sh  (from the repo root; exits non-zero on any
# violation and prints the offending files).
set -u
cd "$(dirname "$0")/.."

status=0
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# 1. Standalone compilation of every header.
for h in $(find src -name '*.h' | sort) bench/common/bench_util.h; do
  case "$h" in
    src/*)          inc="${h#src/}";   flags="-Isrc" ;;
    bench/common/*) inc="${h#bench/}"; flags="-Isrc -Ibench" ;;
  esac
  echo "#include \"$inc\"" > "$tmp/probe.cpp"
  if ! g++ -std=c++20 $flags -fsyntax-only -Wall -Wextra "$tmp/probe.cpp" 2> "$tmp/err"; then
    echo "NOT SELF-CONTAINED: $h"
    sed 's/^/    /' "$tmp/err" | head -5
    status=1
  fi
done

# 2. Every src/*.cpp has a corresponding header.
for c in $(find src -name '*.cpp' | sort); do
  if [ ! -f "${c%.cpp}.h" ]; then
    echo "NO HEADER: $c"
    status=1
  fi
done

# 3. Every public header (src/, bench/common) and every driver entry point
# (tools/*.cpp) must start with a documentation comment: the first line is a
# '//' or '/*' comment describing the module.
for f in $(find src bench/common -name '*.h' | sort) $(find tools -name '*.cpp' | sort); do
  first=$(head -1 "$f")
  case "$first" in
    //*|/\**) ;;
    *)
      echo "UNDOCUMENTED: $f (first line must be a comment block)"
      status=1
      ;;
  esac
done

if [ "$status" -eq 0 ]; then
  echo "header audit: OK"
fi
exit $status
