#!/usr/bin/env bash
# Header audit: every header under src/ (and bench/common) must compile
# standalone, and every src/*.cpp must have a matching .h next to it
# (engine/test-only entry points excepted by listing them here).
#
# Doc-comment coverage used to live here as check 3; it moved into
# scripts/lint_determinism.py (rule: header-doc), which runs in the lint CI
# job and as a ctest entry — one linter owns all textual policy checks.
#
# Usage: scripts/audit_headers.sh  (from the repo root; exits non-zero on any
# violation and prints the offending files).
set -u
cd "$(dirname "$0")/.."

status=0
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# 1. Standalone compilation of every header.
while IFS= read -r h; do
  flags=(-Isrc)
  case "$h" in
    src/*)          inc="${h#src/}" ;;
    bench/common/*) inc="${h#bench/}"; flags=(-Isrc -Ibench) ;;
    *)              continue ;;
  esac
  echo "#include \"$inc\"" > "$tmp/probe.cpp"
  if ! g++ -std=c++20 "${flags[@]}" -fsyntax-only -Wall -Wextra "$tmp/probe.cpp" 2> "$tmp/err"; then
    echo "NOT SELF-CONTAINED: $h"
    sed 's/^/    /' "$tmp/err" | head -5
    status=1
  fi
done < <({ find src -name '*.h' | sort; echo bench/common/bench_util.h; })

# 2. Every src/*.cpp has a corresponding header.
while IFS= read -r c; do
  if [ ! -f "${c%.cpp}.h" ]; then
    echo "NO HEADER: $c"
    status=1
  fi
done < <(find src -name '*.cpp' | sort)

if [ "$status" -eq 0 ]; then
  echo "header audit: OK"
fi
exit "$status"
