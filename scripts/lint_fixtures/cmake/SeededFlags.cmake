add_compile_options(-ffast-math)
