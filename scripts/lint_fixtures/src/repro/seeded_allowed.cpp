// Fixture: a justified allow marker suppresses the finding.
#include <cstdlib>
int seeded_ok() {
  // lint:allow(banned-randomness) fixture proving the escape hatch works
  return rand();
}
