#pragma once
inline int seeded_violation() { return 1; }
