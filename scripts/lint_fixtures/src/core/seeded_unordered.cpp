// Fixture: unordered container in a record-producing layer (PR 5 bug class).
#include <unordered_set>
void seeded_violation() {
  std::unordered_set<int> informed;
  informed.insert(1);
}
