// Fixture: a floating-point reassociation pragma.
#pragma once
#pragma GCC optimize("fast-math")
inline double seeded_violation(double a, double b, double c) { return a + b + c; }
