// Fixture: entropy and wall clock outside src/support/.
#include <random>
unsigned seeded_violation() {
  std::random_device entropy;
  return entropy();
}
