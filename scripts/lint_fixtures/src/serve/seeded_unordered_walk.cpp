// Fixture: iterating an unordered container outside the strict layers.
#include <string>
#include <unordered_map>
int seeded_violation() {
  std::unordered_map<std::string, int> cache;
  int total = 0;
  for (const auto& [key, value] : cache) total += value;
  return total;
}
