// Fixture: an allow marker with no justification is itself a finding.
#include <cstdlib>
int seeded_violation() {
  return rand();  // lint:allow(banned-randomness)
}
