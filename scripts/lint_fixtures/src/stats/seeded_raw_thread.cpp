// Fixture: a raw thread outside the pool/server seams.
#include <thread>
void seeded_violation() {
  std::thread worker([] {});
  worker.join();
}
