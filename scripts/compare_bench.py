#!/usr/bin/env python3
"""Compare two BENCH_*.json snapshots and gate on throughput regressions.

Reads the {"record":"summary"} lines of a baseline and a current snapshot
(scripts/run_bench.sh output), matches grid cells by the work-identifying
manifest fields — scenario, its resolved params (n and friends), engine,
protocol, trials, seed, threads — computes each cell's spread-time throughput
(trials / elapsed_seconds), and fails when the MEDIAN ratio current/baseline
across matched cells drops below 1 - max_regression. The median keeps one
noisy cell on a shared CI runner from failing the gate, while a real engine
regression moves every cell.

Matching is by the named fields only, so snapshots that add new manifest
columns (e.g. peak_rss_mb telemetry) still pair with older baselines. It is
also strict the other way: every baseline cell must be matched by the current
snapshot, otherwise the gate fails listing the missing cells — a renamed or
dropped cell can never soft-pass by silently shrinking the matched set.

Usage:
  compare_bench.py BASELINE.json CURRENT.json [--max-regression 0.25]
  compare_bench.py --self-test

--self-test proves the gate actually fires: it compares a synthetic snapshot
with exactly half the baseline throughput (must FAIL), an identical copy
(must PASS), and a snapshot missing one baseline cell (must FAIL), exiting
non-zero if any branch behaves wrongly. The CI perf jobs run it before the
real comparison.
"""

import argparse
import json
import statistics
import sys

MANIFEST_KEYS = ("scenario", "params", "engine", "protocol", "trials", "seed", "threads")


def load_summaries(path):
    cells = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or '"record":"summary"' not in line:
                continue
            rec = json.loads(line)
            if rec.get("record") != "summary":
                continue
            manifest = rec["manifest"]
            key = tuple(json.dumps(manifest.get(k), sort_keys=True) for k in MANIFEST_KEYS)
            elapsed = rec.get("elapsed_seconds")
            trials = manifest.get("trials")
            if not elapsed or not trials or elapsed <= 0:
                continue
            cells[key] = {
                "label": "{} {} {}".format(
                    manifest.get("scenario"),
                    ",".join("%s=%s" % kv for kv in sorted(manifest.get("params", {}).items())),
                    manifest.get("engine"),
                ),
                "throughput": trials / elapsed,
            }
    return cells


def compare(baseline, current, max_regression):
    """Returns (ok, report_lines)."""
    matched = sorted(set(baseline) & set(current))
    if not matched:
        return False, ["no matching summary cells between baseline and current"]

    lines = ["%-46s %12s %12s %8s" % ("cell", "base tr/s", "cur tr/s", "ratio")]
    ratios = []
    for key in matched:
        base = baseline[key]
        cur = current[key]
        ratio = cur["throughput"] / base["throughput"]
        ratios.append(ratio)
        lines.append("%-46s %12.2f %12.2f %8.3f"
                     % (base["label"], base["throughput"], cur["throughput"], ratio))

    # Unmatched baseline cells mean the current snapshot no longer measures
    # work the gate is supposed to guard; shrinking the matched set must fail
    # loudly, never soft-pass on the survivors.
    missing = sorted(set(baseline) - set(current))
    for key in missing:
        lines.append("MISSING baseline cell not measured by current: %s"
                     % baseline[key]["label"])

    median_ratio = statistics.median(ratios)
    threshold = 1.0 - max_regression
    ok = median_ratio >= threshold and not missing
    lines.append("median throughput ratio %.3f over %d matched cells, %d baseline "
                 "cells unmatched (threshold %.3f): %s"
                 % (median_ratio, len(ratios), len(missing), threshold,
                    "OK" if ok else "REGRESSION"))
    return ok, lines


def self_test(max_regression):
    baseline = {
        ("a",): {"label": "cell-a", "throughput": 100.0},
        ("b",): {"label": "cell-b", "throughput": 10.0},
        ("c",): {"label": "cell-c", "throughput": 1.0},
    }
    halved = {k: {"label": v["label"], "throughput": v["throughput"] / 2.0}
              for k, v in baseline.items()}

    ok_halved, _ = compare(baseline, halved, max_regression)
    if ok_halved:
        print("self-test FAILED: halved throughput passed the gate", file=sys.stderr)
        return 1
    ok_same, _ = compare(baseline, dict(baseline), max_regression)
    if not ok_same:
        print("self-test FAILED: identical snapshot failed the gate", file=sys.stderr)
        return 1
    shrunk = {k: v for k, v in baseline.items() if k != ("b",)}
    ok_shrunk, _ = compare(baseline, shrunk, max_regression)
    if ok_shrunk:
        print("self-test FAILED: a missing baseline cell soft-passed the gate",
              file=sys.stderr)
        return 1
    grown = dict(baseline)
    grown[("d",)] = {"label": "cell-d", "throughput": 5.0}
    ok_grown, _ = compare(baseline, grown, max_regression)
    if not ok_grown:
        print("self-test FAILED: extra current-only cells failed the gate",
              file=sys.stderr)
        return 1
    print("self-test passed: halved throughput and missing baseline cells fail "
          "the gate; identical and superset snapshots pass")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", nargs="?", help="baseline BENCH_*.json")
    parser.add_argument("current", nargs="?", help="current BENCH_*.json")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="maximum tolerated fractional drop of the median "
                             "throughput ratio (default 0.25)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate fires on artificially halved throughput")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test(args.max_regression))
    if not args.baseline or not args.current:
        parser.error("BASELINE and CURRENT are required unless --self-test")

    ok, lines = compare(load_summaries(args.baseline), load_summaries(args.current),
                        args.max_regression)
    print("\n".join(lines))
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
