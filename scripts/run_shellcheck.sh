#!/usr/bin/env bash
# shellcheck gate over every shell script in scripts/.
#
# The scripts are load-bearing test infrastructure (identity checks, the serve
# load test, the bench recorder) — a quoting bug there corrupts evidence, not
# just output. Exits 0 with a notice when shellcheck is not installed (the
# dev container ships no shellcheck); the CI lint job installs it, so the
# gate always runs where it matters.
#
# Usage: scripts/run_shellcheck.sh
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v shellcheck > /dev/null 2>&1; then
  echo "run_shellcheck.sh: shellcheck not installed — skipping (CI runs it)" >&2
  exit 0
fi

# -x follows source'd files; severity=style is the strictest tier, so new
# findings fail CI instead of accumulating. Findings must be fixed or
# suppressed inline with a justified '# shellcheck disable=SCnnnn' directive.
mapfile -t shfiles < <(find scripts -name '*.sh' | sort)
shellcheck -x --severity=style "${shfiles[@]}"
echo "shellcheck: clean (${#shfiles[@]} scripts)" >&2
