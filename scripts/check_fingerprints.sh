#!/usr/bin/env bash
# Golden fingerprint suite: one SHA-256 per (scenario x engine x protocol)
# cell over the canonical per-trial record stream, compared against
# tests/golden/fingerprints.json. Because the fingerprint key deliberately
# excludes execution topology (src/repro/fingerprint.h), the same golden
# table must verify under any --threads/--shards combination — ctest runs
# this script across topologies, turning the determinism contract into a
# single-file byte assertion.
#
# The suite pins every dynamic family plus the engine-internal code paths
# that must not leak into records:
#   - ten scenarios x {async_jump, sync} at n=128 (per-family coverage),
#   - static_torus x {async_jump, async_tick} (tick-engine coverage),
#   - a dense-churn edge-Markovian cell (full rate rebuilds at change points),
#   - a near-stationary edge-Markovian cell sized so the O(delta*deg)
#     incremental rate path engages (candidates*32 < n, core/rate_model.h),
#   - an n=20000 expander cell above the 16384-node tiling threshold, so
#     threaded runs exercise the tiled parallel rebuild/evolution paths.
#
# Usage: scripts/check_fingerprints.sh path/to/rumor_cli
#          [--threads N] [--shards N] [--update] [--out FILE]
#   --update  rewrite tests/golden/fingerprints.json from this build
#   --out     also copy the freshly computed table to FILE (CI artifact)
set -euo pipefail
cli=${1:?usage: check_fingerprints.sh path/to/rumor_cli [--threads N] [--shards N] [--update] [--out FILE]}
shift
if [ ! -x "$cli" ]; then
  echo "check_fingerprints.sh: rumor_cli not found or not executable at '$cli'" >&2
  echo "  build it first: cmake --build build --target rumor_cli" >&2
  exit 2
fi

threads=1 shards=1 update=0 out=""
while [ $# -gt 0 ]; do
  case "$1" in
    --threads) threads=$2; shift 2 ;;
    --shards)  shards=$2;  shift 2 ;;
    --update)  update=1;   shift ;;
    --out)     out=$2;     shift 2 ;;
    *) echo "check_fingerprints.sh: unknown option '$1'" >&2; exit 2 ;;
  esac
done
cd "$(dirname "$0")/.."
golden=tests/golden/fingerprints.json

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

topo=(--threads "$threads" --shards "$shards")
{
  "$cli" fingerprint \
    --scenarios static_clique,static_expander,dynamic_star,clique_bridge,edge_markovian,mobile_geometric,diligent_adversary,absolute_adversary,edge_sampling_expander,intermittent_expander \
    --engines async_jump,sync --sweep n=128 --trials 5 --seed 7 "${topo[@]}"
  "$cli" fingerprint --scenarios static_torus --engines async_jump,async_tick \
    --rows 24 --cols 24 --trials 5 --seed 7 "${topo[@]}"
  # Dense churn: every change point takes the full-rebuild rate path.
  "$cli" fingerprint --scenarios edge_markovian --engines async_jump \
    --sweep n=20000 --p 8e-05 --q 0.2 --trials 2 --seed 9 "${topo[@]}"
  # Near-stationary: ~16 edge flips per change point, so the delta rate path
  # engages and must leave the records bit-identical to a rebuild.
  "$cli" fingerprint --scenarios edge_markovian --engines async_jump \
    --sweep n=4000 --p 1e-06 --q 0.0005 --trials 2 --seed 9 "${topo[@]}"
  # Above the tiling threshold with trials < threads: threaded runs split
  # surplus workers into tiled rebuild teams, which must not change bytes.
  "$cli" fingerprint --scenarios edge_sampling_expander --engines async_jump \
    --sweep n=20000 --d 4 --p 0.5 --trials 2 --seed 9 "${topo[@]}"
} > "$tmp"

if [ -n "$out" ]; then cp "$tmp" "$out"; fi

if [ "$update" = 1 ]; then
  cp "$tmp" "$golden"
  echo "updated $golden ($(wc -l < "$tmp") cells)"
  exit 0
fi

if ! diff -u "$golden" "$tmp"; then
  echo "fingerprints drifted from $golden (threads=$threads shards=$shards)" >&2
  echo "  a diff here means per-trial record bytes changed for that cell;" >&2
  echo "  if intentional, regenerate with: scripts/check_fingerprints.sh $cli --update" >&2
  exit 1
fi
echo "fingerprints match golden: $(wc -l < "$tmp") cells (threads=$threads shards=$shards)"
