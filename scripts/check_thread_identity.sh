#!/usr/bin/env bash
# Scale-tier determinism assert: per-trial records must be byte-identical for
# every execution topology. Counter-based trial seeds + index-addressed
# results + in-order chunk aggregation make the runner's output a pure
# function of (scenario, params, engine, seed); this script proves it end to
# end through `rumor_cli fingerprint` — each run reduces a cell's record
# stream to one SHA-256 line that omits the topology, so runs from different
# thread/shard counts diff directly:
#
#   threads — threads=1 vs a many-worker run on mid-size cells, plus one
#     trials=2 cell where the surplus-thread policy (workers = trials,
#     rebuild_threads = threads/workers) actually engages the tiled parallel
#     rate rebuilds — n is above the 16384-node tiling threshold, so the
#     tiled gather/assign paths run and must still match the serial run byte
#     for byte.
#   shards — the multi-process backend (exec/sharded_backend.h): shards in
#     {1, 2, 4} crossed with threads in {1, N} on one static and one
#     delta-path edge-Markovian cell. Counter-based seeds make a worker's
#     records a pure function of its global trial indices, and the
#     coordinator merges shard streams in trial order, so any shard count
#     (and any thread split across workers) must reproduce the
#     single-process fingerprints exactly.
#
# Usage: scripts/check_thread_identity.sh path/to/rumor_cli [threads]
set -euo pipefail
cli=${1:?usage: check_thread_identity.sh path/to/rumor_cli [threads]}
threads=${2:-8}
if [ ! -x "$cli" ]; then
  echo "check_thread_identity.sh: rumor_cli not found or not executable at '$cli'" >&2
  echo "  build it first: cmake --build build --target rumor_cli" >&2
  exit 2
fi

tmp1=$(mktemp); tmpN=$(mktemp); shard_ref=$(mktemp); shard_out=$(mktemp)
trap 'rm -f "$tmp1" "$tmpN" "$shard_ref" "$shard_out"' EXIT

run_matrix() {  # $1 = thread count, $2 = output file
  "$cli" fingerprint --scenarios edge_markovian --engines async_jump,async_tick \
    --sweep n=20000 --p 8e-05 --q 0.2 \
    --trials 6 --seed 9 --threads "$1" > "$2"
  "$cli" fingerprint --scenarios static_torus --engines async_jump,async_tick \
    --rows 141 --cols 141 \
    --trials 6 --seed 9 --threads "$1" >> "$2"
  # trials < threads: with $1 > 2 this runs 2 workers x ($1/2) rebuild
  # threads, driving the tiled rebuild code path itself.
  "$cli" fingerprint --scenarios edge_sampling_expander --engines async_jump \
    --sweep n=20000 --d 4 --p 0.5 \
    --trials 2 --seed 9 --threads "$1" >> "$2"
  # Near-stationary edge-Markovian (tiny churn at mean degree 8): the jump
  # engine takes the O(Δ·deg) delta rate path at quiet change-points, and the
  # surplus threads drive the family's tiled parallel evolution — both must
  # leave the records byte-identical to the serial run.
  "$cli" fingerprint --scenarios edge_markovian --engines async_jump \
    --sweep n=40000 --p 2e-08 --q 0.0001 \
    --trials 2 --seed 9 --threads "$1" >> "$2"
}

run_matrix 1 "$tmp1"
run_matrix "$threads" "$tmpN"

if ! diff -u "$tmp1" "$tmpN"; then
  echo "per-trial fingerprints differ between --threads 1 and --threads $threads" >&2
  exit 1
fi
echo "record fingerprints byte-identical: threads=1 vs threads=$threads" \
     "($(wc -l < "$tmp1") cells, incl. tiled-rebuild and delta-path cells)"

# --- shard axis -------------------------------------------------------------

run_shard_cells() {  # $1 = shard count, $2 = thread count, $3 = output file
  "$cli" fingerprint --scenarios static_torus --engines async_jump,async_tick \
    --rows 141 --cols 141 \
    --trials 6 --seed 9 --shards "$1" --threads "$2" > "$3"
  "$cli" fingerprint --scenarios edge_markovian --engines async_jump \
    --sweep n=40000 --p 2e-08 --q 0.0001 \
    --trials 2 --seed 9 --shards "$1" --threads "$2" >> "$3"
}

run_shard_cells 1 1 "$shard_ref"
for shards in 2 4; do
  for t in 1 "$threads"; do
    run_shard_cells "$shards" "$t" "$shard_out"
    if ! diff -u "$shard_ref" "$shard_out"; then
      echo "record fingerprints differ: --shards $shards --threads $t" \
           "vs in-process --threads 1" >&2
      exit 1
    fi
  done
done
echo "record fingerprints byte-identical: shards={1,2,4} x threads={1,$threads}" \
     "($(wc -l < "$shard_ref") cells, sharded vs in-process)"
