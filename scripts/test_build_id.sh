#!/usr/bin/env bash
# Tests for scripts/build_id.sh: the -dirty suffix must track *content*
# changes to tracked files, not stat-cache staleness.
#
# Builds a throwaway git repository in a temp dir and checks:
#   1. clean tree        -> no -dirty suffix;
#   2. mtime-only touch  -> still no -dirty (the false positive the
#      update-index refresh exists to prevent);
#   3. content change    -> -dirty appears;
#   4. revert            -> -dirty disappears again;
#   5. non-git directory -> "unknown".
set -euo pipefail
here=$(CDPATH='' cd -- "$(dirname -- "$0")" && pwd)
build_id="$here/build_id.sh"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

repo="$tmp/repo"
mkdir -p "$repo"
git -C "$repo" init -q
git -C "$repo" config user.email test@example.com
git -C "$repo" config user.name test
echo alpha > "$repo/file.txt"
git -C "$repo" add file.txt
git -C "$repo" commit -q -m initial

id=$("$build_id" "$repo")
[[ "$id" =~ ^[0-9a-f]+$ ]] || fail "clean tree should describe as a bare hash, got '$id'"

# Stat-cache staleness: same content, new mtime. Without the update-index
# refresh, `git describe --dirty` reports a false -dirty here.
touch -d '2001-02-03 04:05' "$repo/file.txt"
id=$("$build_id" "$repo")
[[ "$id" != *-dirty ]] || fail "mtime-only change must not mark the tree dirty, got '$id'"

echo beta > "$repo/file.txt"
id=$("$build_id" "$repo")
[[ "$id" == *-dirty ]] || fail "content change must mark the tree dirty, got '$id'"

git -C "$repo" checkout -q -- file.txt
id=$("$build_id" "$repo")
[[ "$id" != *-dirty ]] || fail "reverted tree must be clean again, got '$id'"

mkdir -p "$tmp/plain"
id=$("$build_id" "$tmp/plain")
[[ "$id" == unknown ]] || fail "non-git directory must yield 'unknown', got '$id'"

echo "build_id.sh: all checks passed"
